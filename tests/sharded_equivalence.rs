//! Differential test: the sharded frontend versus a single 32-slot fabric
//! on identical seeded workloads.
//!
//! **Tolerance contract** (documented in DESIGN.md "Scale-out"): the inline
//! winner-merge mode is *exact* — tolerance zero. The Table 2 rule chain
//! with the slot tie-break is a total order, so the minimum over shard
//! minima is the global minimum; with the contiguous partition and the
//! global-ID slot tie-break, every cycle's merged winner, its service
//! verdict, and every loser's expiry check land identically to the single
//! fabric. The threaded streamlet mode relaxes this to one packet per shard
//! per cycle (a K-lane aggregate link): totals and per-slot counts still
//! match exactly once a finite workload drains, which is what the
//! conservation test pins down.

use sharestreams::core::{Fabric, LatePolicy, StreamState};
use sharestreams::prelude::*;
use sharestreams::sharded::ShardedScheduler;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeded_states(rng: &mut StdRng, slots: usize) -> Vec<(StreamState, u64)> {
    (0..slots)
        .map(|_| {
            let period = rng.gen_range(1u64..6);
            let num = rng.gen_range(1u8..4);
            let den = rng.gen_range(num..8);
            let state = StreamState {
                request_period: period,
                original_window: WindowConstraint::new(num, den),
                static_prio: 0,
                late_policy: LatePolicy::ServeLate,
            };
            let first_deadline = rng.gen_range(1u64..10);
            (state, first_deadline)
        })
        .collect()
}

/// Drives both schedulers through the same seeded arrival pattern and
/// asserts bit-exact agreement, cycle by cycle.
fn assert_exact_equivalence(mode_label: &str, config: FabricConfig, shards: usize, seed: u64) {
    let slots = config.slots;
    let mut rng = StdRng::seed_from_u64(seed);
    let states = seeded_states(&mut rng, slots);

    let mut single = Fabric::new(config).unwrap();
    let mut sharded = ShardedScheduler::new(config, shards).unwrap();
    for (slot, (state, first)) in states.iter().enumerate() {
        single.load_stream(slot, state.clone(), *first).unwrap();
        sharded.load_stream(slot, state.clone(), *first).unwrap();
    }

    let cycles = 600u64;
    let mut tag = 0u64;
    for cycle in 0..cycles {
        // Bursty seeded arrivals: a random subset of slots gets a packet.
        for slot in 0..slots {
            if rng.gen_range(0u32..4) == 0 {
                let t = Wrap16::from_wide(tag);
                tag += 1;
                single.push_arrival(slot, t).unwrap();
                sharded.push_arrival(slot, t).unwrap();
            }
        }
        let expected = match single.decision_cycle() {
            DecisionOutcome::Winner(p) => p,
            DecisionOutcome::Block(_) => unreachable!("WR fabric"),
        };
        let got = sharded.decision_cycle();
        assert_eq!(
            got, expected,
            "{mode_label} K={shards}: divergence at cycle {cycle}"
        );
    }
    assert_eq!(sharded.now(), single.now());
    for slot in 0..slots {
        assert_eq!(
            sharded.slot_counters(slot).unwrap(),
            single.slot_counters(slot).unwrap(),
            "{mode_label} K={shards}: counters diverge at slot {slot}"
        );
    }
}

#[test]
fn inline_sharded_exactly_matches_single_fabric_edf() {
    let config = FabricConfig::edf(32, FabricConfigKind::WinnerOnly);
    assert_exact_equivalence("edf", config, 2, 0xE0F1);
    assert_exact_equivalence("edf", config, 4, 0xE0F2);
}

#[test]
fn inline_sharded_exactly_matches_single_fabric_dwcs() {
    let config = FabricConfig::dwcs(32, FabricConfigKind::WinnerOnly);
    assert_exact_equivalence("dwcs", config, 2, 0xD3C51);
    assert_exact_equivalence("dwcs", config, 4, 0xD3C52);
}

#[test]
fn inline_sharded_exactly_matches_single_fabric_service_tag() {
    let config = FabricConfig::service_tag(16, FabricConfigKind::WinnerOnly);
    assert_exact_equivalence("service_tag", config, 2, 0x5EF1);
    assert_exact_equivalence("service_tag", config, 4, 0x5EF2);
}

/// Threaded streamlet mode: a finite backlogged workload drains to the same
/// per-slot totals as the single fabric, within the documented streamlet
/// semantics (K packets per cycle instead of one — conservation is exact,
/// interleaving is per-streamlet).
#[test]
fn threaded_sharded_conserves_against_single_fabric() {
    let slots = 32usize;
    let arrivals = 50usize;
    let config = FabricConfig::edf(slots, FabricConfigKind::WinnerOnly);

    let state = StreamState {
        request_period: 1,
        original_window: WindowConstraint::ZERO,
        static_prio: 0,
        late_policy: LatePolicy::ServeLate,
    };

    // Single fabric: one packet per cycle → slots*arrivals cycles drain it.
    let mut single = Fabric::new(config).unwrap();
    for s in 0..slots {
        single
            .load_stream(s, state.clone(), (s + 1) as u64)
            .unwrap();
        for a in 0..arrivals {
            single.push_arrival(s, Wrap16::from_wide(a as u64)).unwrap();
        }
    }
    let mut single_per_slot = vec![0u64; slots];
    for _ in 0..(slots * arrivals) {
        for p in single.decision_cycle().packets() {
            single_per_slot[p.slot.index()] += 1;
        }
    }

    for shards in [2usize, 4] {
        let mut sharded = ShardedScheduler::new(config, shards).unwrap();
        for s in 0..slots {
            sharded
                .load_stream(s, state.clone(), (s + 1) as u64)
                .unwrap();
            for a in 0..arrivals {
                sharded
                    .push_arrival(s, Wrap16::from_wide(a as u64))
                    .unwrap();
            }
        }
        let mut threaded = sharded.into_threaded(8192);
        // Each shard services one packet per cycle: per-shard backlog is
        // (slots/shards)*arrivals packets, so that many cycles drain all.
        let cycles = (slots / shards * arrivals) as u64;
        let report = threaded.run_cycles(cycles);
        let mut per_slot = vec![0u64; slots];
        for p in &report.packets {
            per_slot[p.slot.index()] += 1;
        }
        assert_eq!(per_slot, single_per_slot, "K={shards} conservation");
        assert_eq!(report.decisions, cycles * shards as u64);
        threaded.join();
    }
}
