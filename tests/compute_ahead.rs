//! The compute-ahead extension (paper §6 future work): identical schedules
//! at log2(N) cycles per window-constrained decision instead of log2(N)+1.

use sharestreams::core::{
    Fabric, FabricConfig, FabricConfigKind, LatePolicy, RtlFabric, StreamState,
};
use sharestreams::hwsim::VirtexModel;
use sharestreams::types::{WindowConstraint, Wrap16};

fn state(period: u64) -> StreamState {
    StreamState {
        request_period: period,
        original_window: WindowConstraint::new(1, 3),
        static_prio: 0,
        late_policy: LatePolicy::ServeLate,
    }
}

fn loaded(config: FabricConfig, frames: u64) -> Fabric {
    let n = config.slots;
    let mut f = Fabric::new(config).unwrap();
    for s in 0..n {
        f.load_stream(s, state(n as u64), (s + 1) as u64).unwrap();
        for q in 0..frames {
            f.push_arrival(s, Wrap16::from_wide(q * n as u64 + s as u64))
                .unwrap();
        }
    }
    f
}

#[test]
fn schedules_are_bit_identical() {
    let base = FabricConfig::dwcs(8, FabricConfigKind::WinnerOnly);
    let ca = FabricConfig {
        compute_ahead: true,
        ..base
    };
    let mut f_base = loaded(base, 300);
    let mut f_ca = loaded(ca, 300);
    for d in 0..2000 {
        assert_eq!(
            f_base.decision_cycle(),
            f_ca.decision_cycle(),
            "decision {d}"
        );
    }
    for s in 0..8 {
        assert_eq!(
            f_base.slot_counters(s).unwrap(),
            f_ca.slot_counters(s).unwrap()
        );
    }
}

#[test]
fn compute_ahead_saves_one_cycle_per_decision() {
    for slots in [4usize, 8, 16, 32] {
        let log2n = slots.trailing_zeros() as u64;
        let base = FabricConfig::dwcs(slots, FabricConfigKind::WinnerOnly);
        let ca = FabricConfig {
            compute_ahead: true,
            ..base
        };
        let mut f_base = loaded(base, 4);
        let mut f_ca = loaded(ca, 4);
        let (b0, c0) = (f_base.hw_cycles(), f_ca.hw_cycles());
        f_base.decision_cycle();
        f_ca.decision_cycle();
        assert_eq!(f_base.hw_cycles() - b0, log2n + 1);
        assert_eq!(f_ca.hw_cycles() - c0, log2n);
    }
}

#[test]
fn rtl_fabric_supports_compute_ahead() {
    let ca = FabricConfig {
        compute_ahead: true,
        ..FabricConfig::dwcs(8, FabricConfigKind::WinnerOnly)
    };
    let mut rtl = RtlFabric::new(ca).unwrap();
    let mut f = loaded(ca, 100);
    for s in 0..8 {
        rtl.load_stream(s, state(8), (s + 1) as u64).unwrap();
        for q in 0..100u64 {
            rtl.push_arrival(s, Wrap16::from_wide(q * 8 + s as u64))
                .unwrap();
        }
    }
    for d in 0..500 {
        assert_eq!(rtl.run_decision(), f.decision_cycle(), "decision {d}");
    }
    // RTL cycle accounting: log2(8) = 3 cycles per decision, no update.
    assert_eq!(rtl.hw_cycles(), 500 * 3);
}

#[test]
fn block_mode_compute_ahead_matches_too() {
    let base = FabricConfig::dwcs(4, FabricConfigKind::Base);
    let ca = FabricConfig {
        compute_ahead: true,
        ..base
    };
    let mut f_base = loaded(base, 100);
    let mut f_ca = loaded(ca, 100);
    for _ in 0..100 {
        assert_eq!(f_base.decision_cycle(), f_ca.decision_cycle());
    }
}

#[test]
fn model_projects_net_throughput_gain() {
    let model = VirtexModel;
    // At 4 slots: 3 cycles → 2 cycles at 0.95 clock = 1.425x decisions/s.
    let base = model
        .wc_decision_rate_hz(4, FabricConfigKind::WinnerOnly, false)
        .unwrap();
    let ca = model
        .wc_decision_rate_hz(4, FabricConfigKind::WinnerOnly, true)
        .unwrap();
    assert!((ca / base - 1.425).abs() < 1e-9, "{}", ca / base);
    // That pushes the 4-slot line card from 7.6M to ~10.8M decisions/s.
    assert!(ca > 10.0e6);
}
