//! Steady-state heap guard: the decision core must not allocate.
//!
//! A counting global allocator wraps the system allocator; after a warmup
//! that lets every buffer (fabric scratch, per-slot VecDeques, sinks) reach
//! its high-water capacity, thousands of decision cycles — WR, BA, batched,
//! and the inline sharded merge — must leave the allocation counter
//! untouched. This file holds exactly one `#[test]` so no sibling test
//! thread can pollute the counter, and the counter itself is per-thread:
//! the libtest harness thread occasionally allocates while the test runs
//! (timing-dependent), and a process-wide count would misattribute that
//! to the decision core. The thread-local is const-initialized and holds
//! a plain `Cell<u64>`, so reading it inside the allocator neither lazily
//! initializes TLS nor registers a destructor — no recursion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use sharestreams::core::{Fabric, LatePolicy, StreamState};
use sharestreams::prelude::*;
use sharestreams::sharded::ShardedScheduler;

struct CountingAlloc;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    ALLOC_CALLS.with(|c| c.set(c.get() + 1));
}

// SAFETY: pure pass-through to `System`, which upholds the GlobalAlloc
// contract; the only addition is a thread-local counter bump, which never
// allocates (const-initialized `Cell`, no lazy TLS init, no destructor).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller obligations (valid layout) are forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: same contract as ours; layout passed through untouched.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: caller obligations are forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: same contract as ours; layout passed through untouched.
        unsafe { System.alloc_zeroed(layout) }
    }
    // SAFETY: caller obligations (ptr from this allocator, matching layout)
    // are forwarded unchanged — we hand out exactly `System`'s pointers.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: ptr originated from `System` via our alloc; layout and
        // size obligations pass through untouched.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    // SAFETY: caller obligations are forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr originated from `System` via our alloc/realloc.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_CALLS.with(|c| c.get())
}

fn edf_state() -> StreamState {
    StreamState {
        request_period: 1,
        original_window: WindowConstraint::ZERO,
        static_prio: 0,
        late_policy: LatePolicy::ServeLate,
    }
}

/// Builds a fully backlogged fabric with `depth` queued arrivals per slot.
fn backlogged(slots: usize, kind: FabricConfigKind, depth: usize) -> Fabric {
    let mut f = Fabric::new(FabricConfig::edf(slots, kind)).unwrap();
    for s in 0..slots {
        f.load_stream(s, edf_state(), (s + 1) as u64).unwrap();
        for a in 0..depth {
            f.push_arrival(s, Wrap16::from_wide(a as u64)).unwrap();
        }
    }
    f
}

/// Refills exactly the slots serviced this cycle, so queue depth — and thus
/// VecDeque capacity — never grows past the warmed-up high-water mark.
fn refill(f: &mut Fabric, tag: &mut u64) {
    for i in 0..f.last_block().len() {
        let slot = f.last_block()[i].slot.index();
        *tag += 1;
        f.push_arrival(slot, Wrap16::from_wide(*tag)).unwrap();
    }
}

#[test]
fn steady_state_decision_cycles_do_not_allocate() {
    const SLOTS: usize = 32;
    const DEPTH: usize = 16;
    const WARMUP: u64 = 200;
    const MEASURED: u64 = 5_000;

    // --- WR fabric, per-cycle API ---
    let mut wr = backlogged(SLOTS, FabricConfigKind::WinnerOnly, DEPTH);
    let mut tag = 0u64;
    for _ in 0..WARMUP {
        wr.decision_cycle_into();
        refill(&mut wr, &mut tag);
    }
    let before = allocations();
    for _ in 0..MEASURED {
        wr.decision_cycle_into();
        refill(&mut wr, &mut tag);
    }
    assert_eq!(
        allocations() - before,
        0,
        "WR decision_cycle_into allocated in steady state"
    );

    // --- BA fabric, per-cycle API (full blocks every cycle) ---
    let mut ba = backlogged(SLOTS, FabricConfigKind::Base, DEPTH);
    for _ in 0..WARMUP {
        ba.decision_cycle_into();
        refill(&mut ba, &mut tag);
    }
    let before = allocations();
    for _ in 0..MEASURED {
        ba.decision_cycle_into();
        refill(&mut ba, &mut tag);
    }
    assert_eq!(
        allocations() - before,
        0,
        "BA decision_cycle_into allocated in steady state"
    );

    // --- Batched lane pass vs pinned scalar reference ---
    // Wide BA fabrics auto-select the packed-lane pass, so the span above
    // already runs it; pinning both dispatches explicitly keeps coverage
    // intact even if the auto-selection heuristic changes. The batched span
    // proves the plane refresh, lane ping-pong, and (under `simd`) the
    // runtime-dispatched AVX2 kernel all stay heap-free.
    for batched in [false, true] {
        let mut f = backlogged(SLOTS, FabricConfigKind::Base, DEPTH);
        f.set_batched(batched);
        for _ in 0..WARMUP {
            f.decision_cycle_into();
            refill(&mut f, &mut tag);
        }
        let before = allocations();
        for _ in 0..MEASURED {
            f.decision_cycle_into();
            refill(&mut f, &mut tag);
        }
        assert_eq!(
            allocations() - before,
            0,
            "BA decision_cycle_into (batched={batched}) allocated in steady state"
        );
    }

    // --- Batched API with a preallocated sink ---
    let mut batch = backlogged(SLOTS, FabricConfigKind::Base, DEPTH);
    let mut sink: Vec<ScheduledPacket> =
        Vec::with_capacity((MEASURED as usize + WARMUP as usize) * SLOTS);
    batch.decision_cycles(WARMUP, &mut sink);
    let before = allocations();
    batch.decision_cycles(MEASURED / 10, &mut sink);
    assert_eq!(
        allocations() - before,
        0,
        "decision_cycles allocated with a preallocated sink"
    );

    // --- Inline sharded winner-merge ---
    let mut sharded =
        ShardedScheduler::new(FabricConfig::edf(SLOTS, FabricConfigKind::WinnerOnly), 4).unwrap();
    for s in 0..SLOTS {
        sharded.load_stream(s, edf_state(), (s + 1) as u64).unwrap();
        for a in 0..DEPTH {
            sharded
                .push_arrival(s, Wrap16::from_wide(a as u64))
                .unwrap();
        }
    }
    for _ in 0..WARMUP {
        if let Some(p) = sharded.decision_cycle() {
            tag += 1;
            sharded
                .push_arrival(p.slot.index(), Wrap16::from_wide(tag))
                .unwrap();
        }
    }
    let before = allocations();
    for _ in 0..MEASURED {
        if let Some(p) = sharded.decision_cycle() {
            tag += 1;
            sharded
                .push_arrival(p.slot.index(), Wrap16::from_wide(tag))
                .unwrap();
        }
    }
    assert_eq!(
        allocations() - before,
        0,
        "sharded inline decision_cycle allocated in steady state"
    );

    // --- Attached telemetry: hooks and periodic flushes stay heap-free ---
    // All instrumentation buffers (trace ring, latency tracker, registry
    // entries) are allocated at attach time; the measured span crosses the
    // 4096-decision auto-flush boundary, so the counter also proves the
    // local-accumulator drain into the striped registry never allocates.
    #[cfg(feature = "telemetry")]
    {
        let registry = sharestreams::telemetry::Registry::new();
        let mut wr = backlogged(SLOTS, FabricConfigKind::WinnerOnly, DEPTH);
        wr.attach_telemetry(&registry, 0, 256);
        for _ in 0..WARMUP {
            wr.decision_cycle_into();
            refill(&mut wr, &mut tag);
        }
        let before = allocations();
        for _ in 0..MEASURED {
            wr.decision_cycle_into();
            refill(&mut wr, &mut tag);
        }
        wr.flush_telemetry();
        assert_eq!(
            allocations() - before,
            0,
            "attached WR decision_cycle_into allocated in steady state"
        );

        let mut sharded =
            ShardedScheduler::new(FabricConfig::edf(SLOTS, FabricConfigKind::WinnerOnly), 4)
                .unwrap();
        for s in 0..SLOTS {
            sharded.load_stream(s, edf_state(), (s + 1) as u64).unwrap();
            for a in 0..DEPTH {
                sharded
                    .push_arrival(s, Wrap16::from_wide(a as u64))
                    .unwrap();
            }
        }
        sharded.attach_telemetry(&registry, 256);
        for _ in 0..WARMUP {
            if let Some(p) = sharded.decision_cycle() {
                tag += 1;
                sharded
                    .push_arrival(p.slot.index(), Wrap16::from_wide(tag))
                    .unwrap();
            }
        }
        let before = allocations();
        for _ in 0..MEASURED {
            if let Some(p) = sharded.decision_cycle() {
                tag += 1;
                sharded
                    .push_arrival(p.slot.index(), Wrap16::from_wide(tag))
                    .unwrap();
            }
        }
        assert_eq!(
            allocations() - before,
            0,
            "attached sharded decision_cycle allocated in steady state"
        );

        // --- Lifecycle tracing: span recording stays heap-free ---
        // The span ring (capacity 256) is allocated at attach; MEASURED
        // cycles push ~MEASURED win events, so the ring wraps many times
        // over and the measured span covers the overwrite path, not just
        // the initial fill.
        let spans = sharestreams::telemetry::SpanRecorder::new(256);
        let mut traced = backlogged(SLOTS, FabricConfigKind::WinnerOnly, DEPTH);
        traced.attach_spans(&spans, 0, "zero-alloc");
        for _ in 0..WARMUP {
            traced.decision_cycle_into();
            refill(&mut traced, &mut tag);
        }
        let before = allocations();
        for _ in 0..MEASURED {
            traced.decision_cycle_into();
            refill(&mut traced, &mut tag);
        }
        assert_eq!(
            allocations() - before,
            0,
            "traced WR decision_cycle_into allocated in steady state"
        );

        // --- Flight recorder: the always-on record path stays heap-free ---
        // `record` is a try-lock push into a preallocated overwrite ring;
        // 4× capacity wraps it fully, and the auto_dump clone below is
        // *allowed* to allocate (post-mortem path), so only `record` sits
        // inside the measured span.
        use sharestreams::telemetry::{DumpReason, SharedFlightRecorder, Stage, StageEvent};
        let flight = SharedFlightRecorder::new(128);
        let before = allocations();
        for i in 0..512u64 {
            flight.record(StageEvent {
                tag: i,
                tsc: i,
                cycle: i,
                track: 0,
                stage: Stage::Service,
                detail: 0,
                arg: 0,
            });
        }
        assert_eq!(
            allocations() - before,
            0,
            "flight recorder record() allocated in steady state"
        );
        assert_eq!(flight.auto_dump(DumpReason::Manual, 512).events.len(), 128);
    }

    // --- Ingress frame decode + edge gate: the wire fast path stays
    // heap-free --- The decoder's buffer is a fixed Box<[u8]> and every
    // SUBMIT entry is read through a borrowed view, so steady-state
    // decode → offer → serve → tick must never touch the heap once the
    // RED backlog's VecDeque has reached its high-water capacity.
    #[cfg(feature = "ingress")]
    {
        use sharestreams::endsystem::RedConfig;
        use sharestreams::ingress::{frame, EdgeGate, Frame, FrameDecoder, IngressArrival};
        let entries: Vec<(u32, u16)> = (0..16)
            .map(|i| (i as u32 % SLOTS as u32, i as u16))
            .collect();
        let mut encoded = Vec::new();
        frame::encode_submit(&mut encoded, 1, &entries);
        let windows: Vec<WindowConstraint> = (0..SLOTS)
            .map(|s| WindowConstraint::new((s % 4) as u8, 4))
            .collect();
        let mut dec = FrameDecoder::new(4096);
        let mut gate = EdgeGate::new(&windows, 1_000, 4_000, RedConfig::classic(64), 7);
        let spin = |dec: &mut FrameDecoder, gate: &mut EdgeGate, cycles: u64| {
            for _ in 0..cycles {
                dec.push(&encoded).unwrap();
                while let Ok(Some(f)) = dec.next() {
                    if let Frame::Submit(v) = f {
                        for e in v.iter() {
                            let _ = gate.offer(IngressArrival {
                                slot: e.slot,
                                tag: e.tag,
                            });
                        }
                    }
                }
                while let Some(a) = gate.pop_backlog() {
                    gate.mark_served(a.slot as usize);
                }
                gate.tick();
            }
        };
        spin(&mut dec, &mut gate, WARMUP);
        let before = allocations();
        spin(&mut dec, &mut gate, MEASURED);
        assert_eq!(
            allocations() - before,
            0,
            "ingress decode/offer/serve/tick allocated in steady state"
        );
    }

    // --- Overload gate: the admit/shed/tick fast path stays heap-free ---
    // Warmup drives the RED mirror's VecDeque to its high-water capacity
    // and the 2-offers-per-serve loop then holds occupancy inside the RED
    // band, so the measured span exercises every verdict — token-bucket
    // rejects, RED sheds, protected-stream vetoes, and plain admits —
    // plus the pressure/ledger bookkeeping behind them.
    #[cfg(feature = "overload")]
    {
        use sharestreams::endsystem::{GateConfig, GateVerdict, OverloadGate, RedConfig};
        let windows: Vec<WindowConstraint> = (0..SLOTS)
            .map(|s| WindowConstraint {
                num: (s % 4) as u8,
                den: 4,
            })
            .collect();
        let mut gate = OverloadGate::new(GateConfig::from_windows(
            &windows,
            400,
            4_000,
            RedConfig::classic(64),
            7,
        ));
        let mut next = 0usize;
        let mut drive = |gate: &mut OverloadGate, cycles: u64| {
            for _ in 0..cycles {
                let mut admitted = 0u32;
                for _ in 0..2 {
                    next = (next + 1) % SLOTS;
                    if matches!(gate.offer(next), GateVerdict::Admit) {
                        admitted += 1;
                    }
                }
                if admitted > 0 {
                    gate.served(next);
                }
                let occupied = gate.ledger().total() as usize % 128;
                gate.tick(occupied, 128);
            }
        };
        drive(&mut gate, WARMUP);
        let before = allocations();
        drive(&mut gate, MEASURED);
        assert_eq!(
            allocations() - before,
            0,
            "overload gate offer/served/tick allocated in steady state"
        );
    }
}
