//! End-to-end endsystem scenarios spanning traffic generation, the Queue
//! Manager, the fabric, and the Transmission Engine.

use sharestreams::endsystem::{PciModel, TransferStrategy};
use sharestreams::prelude::*;
use sharestreams::traffic::{merge, Bursty, Cbr, OnOff, Poisson};

fn pipeline(weights: &[u32]) -> (EndsystemPipeline, Vec<StreamId>) {
    let slots = weights.len().next_power_of_two().max(2);
    let fabric = FabricConfig::dwcs(slots, FabricConfigKind::WinnerOnly);
    let mut pipe = EndsystemPipeline::new(EndsystemConfig::paper_endsystem(fabric)).unwrap();
    let ids = weights
        .iter()
        .map(|&w| {
            pipe.register(StreamSpec::new(
                format!("w{w}"),
                ServiceClass::FairShare { weight: w },
            ))
            .unwrap()
        })
        .collect();
    (pipe, ids)
}

#[test]
fn every_deposited_frame_is_transmitted() {
    let (mut pipe, ids) = pipeline(&[1, 2, 3]);
    let sources: Vec<Box<dyn Iterator<Item = ArrivalEvent>>> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            Box::new(Cbr::new(
                id,
                PacketSize(1000),
                50_000 + i as u64 * 7,
                0,
                1_000,
            )) as Box<dyn Iterator<Item = ArrivalEvent>>
        })
        .collect();
    let arrivals: Vec<ArrivalEvent> = merge(sources).collect();
    let report = pipe.run(&arrivals);
    assert_eq!(report.total_packets, 3_000);
    assert_eq!(report.dropped, 0);
    for row in &report.streams {
        assert_eq!(row.serviced, 1_000, "{}", row.name);
        assert_eq!(row.bytes, 1_000_000);
    }
}

#[test]
fn mixed_generators_conserve_packets() {
    let (mut pipe, ids) = pipeline(&[1, 1, 1, 1]);
    let sources: Vec<Box<dyn Iterator<Item = ArrivalEvent>>> = vec![
        Box::new(Cbr::new(ids[0], PacketSize(512), 200_000, 0, 800)),
        Box::new(Poisson::new(ids[1], PacketSize(512), 250_000.0, 42, 800)),
        Box::new(OnOff::new(
            ids[2],
            PacketSize(512),
            100_000,
            12.0,
            2_000_000.0,
            7,
            800,
        )),
        Box::new(Bursty::new(
            ids[3],
            PacketSize(512),
            100,
            50_000,
            5_000_000,
            0,
            800,
        )),
    ];
    let arrivals: Vec<ArrivalEvent> = merge(sources).collect();
    let report = pipe.run(&arrivals);
    assert_eq!(report.total_packets, 3_200);
    for row in &report.streams {
        assert_eq!(row.serviced, 800, "{}", row.name);
    }
}

#[test]
fn underloaded_pipeline_has_small_delays() {
    // Arrivals at 10% of link capacity: delays stay near one service time.
    let (mut pipe, ids) = pipeline(&[1, 1]);
    let service_ns = 1500 * 1_000_000_000 / 16_000_000; // 93.75 µs
    let sources: Vec<Box<dyn Iterator<Item = ArrivalEvent>>> = ids
        .iter()
        .map(|&id| {
            Box::new(Cbr::new(id, PacketSize(1500), service_ns * 20, 0, 500))
                as Box<dyn Iterator<Item = ArrivalEvent>>
        })
        .collect();
    let arrivals: Vec<ArrivalEvent> = merge(sources).collect();
    let report = pipe.run(&arrivals);
    for row in &report.streams {
        assert!(
            row.mean_delay_us < 3.0 * service_ns as f64 / 1e3,
            "{}: mean delay {}µs",
            row.name,
            row.mean_delay_us
        );
    }
}

#[test]
fn pci_transfer_costs_reduce_throughput_monotonically() {
    let fabric = FabricConfig::dwcs(2, FabricConfigKind::WinnerOnly);
    let base = EndsystemConfig::paper_endsystem(fabric);
    let mut pio1 = base;
    pio1.transfer = Some((PciModel::pci32_33(), TransferStrategy::PioPush, 1));
    let mut pio64 = base;
    pio64.transfer = Some((PciModel::pci32_33(), TransferStrategy::PioPush, 64));
    let mut dma256 = base;
    dma256.transfer = Some((PciModel::pci32_33(), TransferStrategy::DmaPull, 256));

    let no_transfer = base.modeled_pps();
    assert!(pio1.modeled_pps() < pio64.modeled_pps());
    assert!(pio64.modeled_pps() < no_transfer);
    assert!(dma256.modeled_pps() < no_transfer);
    assert!(dma256.modeled_pps() > pio1.modeled_pps());
}

#[test]
fn queue_capacity_drops_are_reported() {
    let fabric = FabricConfig::dwcs(2, FabricConfigKind::WinnerOnly);
    let mut cfg = EndsystemConfig::paper_endsystem(fabric);
    cfg.queue_capacity = 16;
    let mut pipe = EndsystemPipeline::new(cfg).unwrap();
    let a = pipe
        .register(StreamSpec::new("a", ServiceClass::BestEffort))
        .unwrap();
    // A huge instantaneous burst overruns the 16-slot queue.
    let arrivals: Vec<ArrivalEvent> = (0..1000)
        .map(|_| ArrivalEvent {
            time_ns: 0,
            stream: a,
            size: PacketSize(1500),
        })
        .collect();
    let report = pipe.run(&arrivals);
    assert!(report.dropped > 0);
    assert_eq!(report.total_packets + report.dropped, 1000);
}

#[test]
fn burst_delay_ramps_and_recovers() {
    // The Figure 9 mechanism in miniature: delay grows within an
    // overloading burst and the inter-burst gap drains it back down.
    let (mut pipe, ids) = pipeline(&[1, 1, 2, 4]);
    let sources: Vec<Box<dyn Iterator<Item = ArrivalEvent>>> = ids
        .iter()
        .map(|&id| {
            Box::new(Bursty::new(
                id,
                PacketSize(1500),
                400,
                150_000,
                200_000_000,
                0,
                800,
            )) as Box<dyn Iterator<Item = ArrivalEvent>>
        })
        .collect();
    let arrivals: Vec<ArrivalEvent> = merge(sources).collect();
    let report = pipe.run(&arrivals);
    // w4 (stream index 3) sees lower delay than w1 (index 0).
    assert!(report.streams[3].mean_delay_us < report.streams[0].mean_delay_us);
    // Ramp visible: max delay far above the single-service floor.
    assert!(report.streams[0].max_delay_us > 10.0 * 93.75);
    // Delay series is non-monotone (rises within bursts, falls after):
    let series = pipe.delay_series(ids[0]);
    let ys: Vec<f64> = series.points.iter().map(|p| p.1).collect();
    let rises = ys.windows(2).filter(|w| w[1] > w[0]).count();
    let falls = ys.windows(2).filter(|w| w[1] < w[0]).count();
    assert!(
        rises > 0 && falls > 0,
        "zig-zag expected: {rises} rises, {falls} falls"
    );
}
