//! Wire-speed claims across the framework, hwsim model, and line card —
//! the three must tell one consistent story.

use sharestreams::framework::{assess, required_decision_rate_hz};
use sharestreams::hwsim::{FabricConfigKind, VirtexDevice, VirtexModel};
use sharestreams::linecard::Linecard;
use sharestreams::types::{packet_time_ns, PacketSize};

const GBPS: u64 = 1_000_000_000;

#[test]
fn framework_and_linecard_agree_on_feasibility() {
    use sharestreams::core::{FabricConfig, LatePolicy, StreamState};
    for slots in [4usize, 8, 16, 32] {
        for kind in [FabricConfigKind::WinnerOnly, FabricConfigKind::Base] {
            let mut card = Linecard::new(FabricConfig::dwcs(slots, kind), 16).unwrap();
            for s in 0..slots {
                card.load_stream(
                    s,
                    StreamState {
                        request_period: slots as u64,
                        original_window: sharestreams::types::WindowConstraint::ZERO,
                        static_prio: 0,
                        late_policy: LatePolicy::ServeLate,
                    },
                    (s + 1) as u64,
                )
                .unwrap();
            }
            for bps in [GBPS, 10 * GBPS] {
                for size in [PacketSize::ETH_MIN, PacketSize::ETH_MTU] {
                    let fw = assess(slots, kind, true, bps, size).unwrap();
                    let lc = card.wire_speed_report(bps, size);
                    assert_eq!(
                        fw.feasible, lc.sustains_wire_speed,
                        "disagreement at {slots} slots {kind:?} {bps} {size}"
                    );
                }
            }
        }
    }
}

#[test]
fn model_rate_matches_simulated_cycle_accounting() {
    // The analytic cycles-per-decision must equal what the simulated
    // fabric actually spends.
    use sharestreams::core::{Fabric, FabricConfig};
    let model = VirtexModel;
    for slots in [4usize, 8, 16, 32] {
        let mut fabric =
            Fabric::new(FabricConfig::dwcs(slots, FabricConfigKind::WinnerOnly)).unwrap();
        let before = fabric.hw_cycles();
        fabric.decision_cycle();
        let simulated = fabric.hw_cycles() - before;
        let modeled = model.cycles_per_decision(slots, true).unwrap();
        assert_eq!(simulated, modeled, "slots {slots}");
    }
}

#[test]
fn packet_time_budget_consistency() {
    // required rate × packet-time == 1 second (up to rounding).
    for bps in [GBPS, 10 * GBPS] {
        for size in [PacketSize::ETH_MIN, PacketSize(512), PacketSize::ETH_MTU] {
            let rate = required_decision_rate_hz(bps, size);
            let pt = packet_time_ns(size, bps) as f64;
            assert!((rate * pt / 1e9 - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn every_design_point_fits_the_family() {
    let model = VirtexModel;
    for slots in [2usize, 4, 8, 16, 32] {
        for kind in [FabricConfigKind::WinnerOnly, FabricConfigKind::Base] {
            let device = model.smallest_device(slots, kind).unwrap();
            assert!(
                device.is_some(),
                "{slots} slots {kind:?} must fit some Virtex-I"
            );
            assert!(model.fit(slots, kind, VirtexDevice::xcv1000()).is_ok());
        }
    }
}

#[test]
fn paper_wire_speed_sentence_holds() {
    // §5.1: "Our Virtex I implementation can easily meet the packet-time
    // requirements of all frame sizes (64-byte and 1500-byte) on gigabit
    // links, and 1500-byte frames on 10Gbps links."
    let cases = [
        (GBPS, PacketSize::ETH_MIN, true),
        (GBPS, PacketSize::ETH_MTU, true),
        (10 * GBPS, PacketSize::ETH_MTU, true),
    ];
    for slots in [4usize, 8, 16, 32] {
        for (bps, size, expect) in cases {
            let f = assess(slots, FabricConfigKind::WinnerOnly, true, bps, size).unwrap();
            assert_eq!(f.feasible, expect, "{slots} slots @ {bps} {size}");
        }
    }
}
